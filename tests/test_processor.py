"""Tests of the processor model: op execution, fast-forward, stalls."""

import pytest

from repro.errors import SimulationError
from repro.system.machine import Machine

from conftest import ScriptedApp, run_scripted, tiny_config


class TestExecution:
    def test_ops_executed_counted(self):
        machine, _stats = run_scripted(
            {1: [("r", ("blk", 0)), ("w", ("blk", 0)), ("work", 10)]},
            blocks=1, home=0,
        )
        assert machine.nodes[1].processor.ops_executed == 3

    def test_work_advances_time(self):
        machine, stats = run_scripted({1: [("work", 12345)]}, blocks=1)
        assert stats.finish_times[1] >= 12345

    def test_unknown_op_raises(self):
        with pytest.raises(SimulationError):
            run_scripted({1: [("frobnicate", 1)]}, blocks=1)

    def test_empty_stream_finishes_immediately(self):
        machine, stats = run_scripted({}, blocks=1)
        assert stats.exec_time == 0 or stats.exec_time >= 0
        assert all(node.processor.done for node in machine.nodes)

    def test_read_stall_accumulates_on_misses(self):
        machine, _stats = run_scripted(
            {1: [("r", ("blk", 0))]}, blocks=1, home=0
        )
        proc = machine.nodes[1].processor
        # a remote read costs well over the L2 hit time
        assert proc.read_stall_cycles > 50

    def test_hits_do_not_stall(self):
        machine, _stats = run_scripted(
            {1: [("r", ("blk", 0))] + [("r", ("blk", 0))] * 10},
            blocks=1, home=0,
        )
        proc = machine.nodes[1].processor
        first_stall = proc.read_stall_cycles
        assert first_stall > 0
        # re-runs of the same read added no stall: only 1 miss happened
        assert machine.nodes[1].l2ctrl.reads_issued == 1


class TestFastForward:
    def test_quantum_bounds_run_ahead(self):
        # a long pure-compute stream must still yield to the event queue:
        # with quantum Q the processor schedules itself roughly every Q
        config = tiny_config(quantum=100)
        machine = Machine(config)
        app = ScriptedApp({1: [("work", 10)] * 200}, blocks=1)
        stats = machine.run(app)
        # 200 * 10 = 2000 cycles of work; quantum 100 means >= ~20 yields
        assert stats.finish_times[1] >= 2000
        assert machine.sim.events_fired >= 20

    def test_local_clock_reaches_global_clock(self):
        machine, stats = run_scripted(
            {1: [("work", 500), ("r", ("blk", 0))]}, blocks=1, home=0
        )
        proc = machine.nodes[1].processor
        assert proc.finish_time >= 500
        assert stats.exec_time >= proc.finish_time - 1


class TestValueTrace:
    def test_trace_records_reads_with_versions(self):
        machine, _stats = run_scripted(
            {1: [("w", ("blk", 0)), ("r", ("blk", 0))]}, blocks=1, home=0
        )
        # the read was forwarded from the write buffer; after drain the
        # L2 line holds version 1
        app_trace = machine.nodes[1].processor.value_trace
        assert all(entry[0] == "r" for entry in app_trace)

    def test_write_trace_records_versions(self):
        machine, _stats = run_scripted(
            {1: [("w", ("blk", 0)), ("w", ("blk", 1))]}, blocks=2, home=0
        )
        writes = machine.nodes[1].write_trace
        assert [w[2] for w in writes] == [1, 1]

    def test_trace_disabled_by_default_config(self):
        config = tiny_config(trace_values=False)
        machine = Machine(config)
        machine.run(ScriptedApp({1: [("r", ("blk", 0))]}, blocks=1, home=0))
        assert machine.nodes[1].processor.value_trace == []


class TestStallAccounting:
    def test_wb_stall_cycles(self):
        config = tiny_config(write_buffer_entries=1)
        machine = Machine(config)
        app = ScriptedApp(
            {1: [("w", ("blk", i)) for i in range(8)]}, blocks=8, home=0
        )
        machine.run(app)
        assert machine.nodes[1].processor.wb_stall_cycles > 0

    def test_sync_stall_zero_without_sync(self):
        machine, _stats = run_scripted({1: [("work", 100)]}, blocks=1)
        assert machine.nodes[1].processor.sync_stall_cycles == 0
