"""Property-based whole-system tests.

Random (but seeded-by-hypothesis) workloads over small machines, with the
strong postconditions checked after quiescence:

* the whole-machine coherence audit passes (single owner, registered
  sharers, all cached copies agree with home versions — including switch
  caches and network caches);
* each processor's observed version sequence per block is monotone;
* the total number of version bumps equals the number of drained stores.
"""

from typing import Dict, List

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.system.machine import Machine

from conftest import ScriptedApp, assert_coherent, assert_monotonic_reads, tiny_config

# ops per processor: reads/writes over a handful of blocks with barriers
op_strategy = st.one_of(
    st.tuples(st.just("r"), st.integers(0, 5)),
    st.tuples(st.just("w"), st.integers(0, 5)),
    st.tuples(st.just("work"), st.integers(1, 60)),
)


def make_scripts(raw: Dict[int, List], barrier_every: int) -> Dict[int, List]:
    """Convert raw (op, blk) tuples into scripts with aligned barriers."""
    scripts = {}
    max_len = max((len(ops) for ops in raw.values()), default=0)
    n_barriers = max_len // barrier_every if barrier_every else 0
    for proc, ops in raw.items():
        script = []
        for i, (code, arg) in enumerate(ops):
            if code in ("r", "w"):
                script.append((code, ("blk", arg)))
            else:
                script.append((code, arg))
            if barrier_every and (i + 1) % barrier_every == 0:
                script.append(("barrier", (i + 1) // barrier_every))
        # everyone attends every barrier the longest stream reaches
        own = len(ops) // barrier_every if barrier_every else 0
        for b in range(own + 1, n_barriers + 1):
            script.append(("barrier", b))
        scripts[proc] = script
    # processors with no raw ops still need the barriers
    for proc in range(4):
        if proc not in scripts:
            scripts[proc] = [("barrier", b) for b in range(1, n_barriers + 1)]
    return scripts


settings_kwargs = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**settings_kwargs)
@given(
    raw=st.dictionaries(
        st.integers(0, 3),
        st.lists(op_strategy, max_size=25),
        max_size=4,
    ),
    barrier_every=st.sampled_from([0, 5, 10]),
)
def test_property_base_machine_coherent(raw, barrier_every):
    scripts = make_scripts(raw, barrier_every)
    machine = Machine(tiny_config())
    machine.run(ScriptedApp(scripts, blocks=6, home=0))
    assert_coherent(machine)
    assert_monotonic_reads(machine)


@settings(**settings_kwargs)
@given(
    raw=st.dictionaries(
        st.integers(0, 3),
        st.lists(op_strategy, max_size=25),
        max_size=4,
    ),
    barrier_every=st.sampled_from([0, 5]),
    sc_size=st.sampled_from([256, 1024]),
)
def test_property_switch_cache_machine_coherent(raw, barrier_every, sc_size):
    scripts = make_scripts(raw, barrier_every)
    machine = Machine(tiny_config(switch_cache_size=sc_size))
    machine.run(ScriptedApp(scripts, blocks=6, home=0))
    assert_coherent(machine)
    assert_monotonic_reads(machine)


@settings(**settings_kwargs)
@given(
    raw=st.dictionaries(
        st.integers(0, 3),
        st.lists(op_strategy, max_size=20),
        max_size=4,
    ),
)
def test_property_netcache_machine_coherent(raw):
    scripts = make_scripts(raw, 0)
    machine = Machine(tiny_config(netcache_size=2048))
    machine.run(ScriptedApp(scripts, blocks=6, home=0))
    assert_coherent(machine)
    assert_monotonic_reads(machine)


@settings(**settings_kwargs)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=30
    ),
)
def test_property_version_bumps_equal_drained_stores(writes):
    """Every store drains exactly one version bump at block granularity."""
    per_proc: Dict[int, List] = {p: [] for p in range(4)}
    expected: Dict[int, int] = {}
    for proc, blk in writes:
        per_proc[proc].append(("w", ("blk", blk)))
        expected[blk] = expected.get(blk, 0) + 1
    machine = Machine(tiny_config())
    app = ScriptedApp(per_proc, blocks=4, home=0)
    machine.run(app)
    for blk, count in expected.items():
        addr = app.block_addrs[blk]
        # the latest version anywhere (owner L2 or home memory) equals the
        # number of merged drain operations, which is <= store count but
        # >= 1 when any store happened; with block-granular merging the
        # bumps equal the number of distinct drain transactions
        versions = [machine.memory_version(addr)]
        for node in machine.nodes:
            line = node.hierarchy.l2.probe(addr)
            if line is not None:
                versions.append(line.data)
        total_bumps = max(versions)
        drained = sum(
            1 for node in machine.nodes
            for w in node.write_trace if w[1] == addr
        )
        assert total_bumps == drained
        assert 1 <= total_bumps <= count
    assert_coherent(machine)


@settings(**settings_kwargs)
@given(seed=st.integers(0, 2**16))
def test_property_uniform_random_app_coherent(seed):
    from repro.apps.synthetic import UniformRandom

    machine = Machine(tiny_config(switch_cache_size=512))
    machine.run(UniformRandom(ops_per_proc=60, nbytes=2048, seed=seed))
    assert_coherent(machine)
    assert_monotonic_reads(machine)


@settings(**settings_kwargs)
@given(
    raw=st.dictionaries(
        st.integers(0, 3),
        st.lists(op_strategy, max_size=15),
        max_size=4,
    ),
)
def test_property_trace_roundtrip_is_exact(raw):
    """record(run(app)) replayed on an identical machine reproduces the
    run bit-exactly (exec time and every read counter)."""
    from repro.apps.trace import TraceApplication, TraceRecorder

    scripts = make_scripts(raw, 5)
    machine = Machine(tiny_config())
    recorder = TraceRecorder(ScriptedApp(scripts, blocks=6, home=0))
    original = machine.run(recorder)

    replay_machine = Machine(tiny_config())
    replayed = replay_machine.run(
        TraceApplication(recorder.dumps().splitlines())
    )
    assert replayed.exec_time == original.exec_time
    assert replayed.read_counts == original.read_counts
    assert_coherent(replay_machine)


@settings(**settings_kwargs)
@given(
    writers=st.lists(st.integers(0, 3), min_size=1, max_size=8),
)
def test_property_lock_serializes_critical_sections(writers):
    """N lock-protected increments leave the counter at exactly N."""
    scripts = {p: [] for p in range(4)}
    for proc in writers:
        scripts[proc].extend(
            [("lock", 1), ("r", ("blk", 0)), ("w", ("blk", 0)),
             ("unlock", 1)]
        )
    machine = Machine(tiny_config())
    app = ScriptedApp(scripts, blocks=1, home=0)
    machine.run(app)
    block = app.block_addrs[0]
    versions = [machine.memory_version(block)]
    for node in machine.nodes:
        line = node.hierarchy.l2.probe(block)
        if line is not None:
            versions.append(line.data)
    assert max(versions) == len(writers)
    assert_coherent(machine)


@settings(**settings_kwargs)
@given(
    raw=st.dictionaries(
        st.integers(0, 3),
        st.lists(op_strategy, max_size=20),
        max_size=4,
    ),
    barrier_every=st.sampled_from([0, 5]),
)
def test_property_cluster_machine_coherent(raw, barrier_every):
    scripts = make_scripts(raw, barrier_every)
    machine = Machine(tiny_config(num_nodes=2, procs_per_node=2,
                                  switch_cache_size=512))
    machine.run(ScriptedApp(scripts, blocks=6, home=0))
    assert_coherent(machine)
    assert_monotonic_reads(machine)
