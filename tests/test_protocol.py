"""End-to-end directory-protocol tests driven by scripted workloads.

Each test builds a small machine, runs an exact per-processor access
script, lets the system quiesce, and checks directory state, cached
copies, version values, and the whole-machine coherence audit.
"""

from repro.cache.states import DirState, LineState
from repro.network.message import MsgKind

from conftest import (
    ScriptedApp,
    assert_coherent,
    assert_monotonic_reads,
    run_scripted,
    tiny_config,
)


class TestReads:
    def test_remote_read_served_at_remote_memory(self):
        machine, stats = run_scripted({1: [("r", ("blk", 0))]}, blocks=1, home=0)
        assert stats.read_counts["remote_mem"] == 1
        entry = machine.nodes[0].directory.entry(0)
        app_block = machine.nodes[1].processor.value_trace[0][1]
        entry = machine.nodes[0].directory.peek(app_block)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1}
        assert_coherent(machine)

    def test_reread_hits_l1(self):
        _machine, stats = run_scripted(
            {1: [("r", ("blk", 0)), ("r", ("blk", 0))]}, blocks=1, home=0
        )
        assert stats.read_counts["remote_mem"] == 1
        assert stats.read_counts["l1"] == 1

    def test_local_read_never_enters_network(self):
        machine, stats = run_scripted({0: [("r", ("blk", 0))]}, blocks=1, home=0)
        assert stats.read_counts["local_mem"] == 1
        assert machine.fabric.stats.msgs_injected == 0

    def test_read_returns_initial_version_zero(self):
        machine, _stats = run_scripted({1: [("r", ("blk", 0))]}, blocks=1, home=0)
        trace = machine.nodes[1].processor.value_trace
        assert trace[0][2] == 0

    def test_two_readers_both_registered(self):
        app = ScriptedApp(
            {1: [("r", ("blk", 0))], 2: [("r", ("blk", 0))]}, blocks=1, home=0
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        entry = machine.nodes[0].directory.peek(app.block_addrs[0])
        assert entry.sharers == {1, 2}
        assert_coherent(machine)


class TestWrites:
    def test_write_miss_takes_ownership(self):
        app = ScriptedApp({1: [("w", ("blk", 0))]}, blocks=1, home=0)
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        entry = machine.nodes[0].directory.peek(block)
        assert entry.state is DirState.MODIFIED
        assert entry.owner == 1
        line = machine.nodes[1].hierarchy.l2.probe(block)
        assert line.state is LineState.MODIFIED
        assert line.data == 1  # version bumped by the store
        assert_coherent(machine)

    def test_read_then_write_uses_upgrade(self):
        app = ScriptedApp(
            {1: [("r", ("blk", 0)), ("w", ("blk", 0))]}, blocks=1, home=0
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        assert machine.nodes[1].l2ctrl.upgrades_issued == 1
        assert machine.nodes[1].l2ctrl.writes_issued == 0
        assert_coherent(machine)

    def test_write_then_remote_read_recalls_owner(self):
        app = ScriptedApp(
            {
                1: [("w", ("blk", 0)), ("barrier", 1)],
                0: [("barrier", 1)],
                2: [("barrier", 1), ("r", ("blk", 0))],
                3: [("barrier", 1)],
            },
            blocks=1,
            home=0,
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        stats = machine.run(app)
        block = app.block_addrs[0]
        # the reader observed the written version
        reads = [v for op, a, v, _t in machine.nodes[2].processor.value_trace
                 if a == block]
        assert reads == [1]
        # directory is SHARED with writer and reader; memory updated
        entry = machine.nodes[0].directory.peek(block)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1, 2}
        assert entry.version == 1
        assert stats.read_counts["owner"] == 1
        assert machine.nodes[0].home_ctrl.reads_recalled == 1
        assert_coherent(machine)

    def test_writer_invalidates_reader(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2),
                    ("r", ("blk", 0))],
                2: [("barrier", 1), ("w", ("blk", 0)), ("barrier", 2)],
                0: [("barrier", 1), ("barrier", 2)],
                3: [("barrier", 1), ("barrier", 2)],
            },
            blocks=1,
            home=0,
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        reads = [v for op, a, v, _t in machine.nodes[1].processor.value_trace
                 if a == block]
        assert reads == [0, 1]  # saw the new version after the barrier
        assert machine.nodes[1].l2ctrl.invs_received >= 1
        assert_monotonic_reads(machine)
        assert_coherent(machine)

    def test_concurrent_writers_serialize(self):
        app = ScriptedApp(
            {p: [("w", ("blk", 0))] for p in range(4)}, blocks=1, home=0
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        # four stores, four version bumps, exactly one final owner
        owners = [
            n.node_id
            for n in machine.nodes
            if n.hierarchy.state_of(block) is LineState.MODIFIED
        ]
        assert len(owners) == 1
        line = machine.nodes[owners[0]].hierarchy.l2.probe(block)
        assert line.data == 4
        assert_coherent(machine)

    def test_dirty_eviction_writes_back(self):
        # L2 with 4 direct-ish sets: writing many conflicting blocks forces
        # dirty evictions and standalone writebacks
        config = tiny_config(l2_size=1024, l2_assoc=1, l1_size=512)
        scripts = {1: [("w", ("blk", i)) for i in range(32)]}
        machine, _stats = run_scripted(scripts, config=config, blocks=32, home=0)
        assert machine.nodes[1].l2ctrl.writebacks_sent > 0
        assert machine.nodes[0].home_ctrl.writebacks > 0
        assert_coherent(machine)

    def test_write_after_eviction_reclaims_ownership(self):
        config = tiny_config(l2_size=1024, l2_assoc=1, l1_size=512)
        scripts = {1: [("w", ("blk", i)) for i in range(32)]
                   + [("w", ("blk", 0))]}
        machine, _stats = run_scripted(scripts, config=config, blocks=32, home=0)
        assert_coherent(machine)


class TestUpgradeRaces:
    def test_racing_upgrades_escalate(self):
        # both processors read (S everywhere) then write with no barrier:
        # the loser's upgrade must be escalated to a full data reply
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1), ("w", ("blk", 0))],
                2: [("r", ("blk", 0)), ("barrier", 1), ("w", ("blk", 0))],
                0: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1,
            home=0,
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        # both stores landed: final version is 2
        owner = [n for n in machine.nodes
                 if n.hierarchy.state_of(block) is LineState.MODIFIED]
        assert len(owner) == 1
        assert owner[0].hierarchy.l2.probe(block).data == 2
        assert_coherent(machine)

    def test_ping_pong_ownership(self):
        app = ScriptedApp(
            {
                1: [("w", ("blk", 0)), ("barrier", 1), ("barrier", 2),
                    ("w", ("blk", 0))],
                2: [("barrier", 1), ("w", ("blk", 0)), ("barrier", 2)],
                0: [("barrier", 1), ("barrier", 2)],
                3: [("barrier", 1), ("barrier", 2)],
            },
            blocks=1,
            home=0,
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        entry = machine.nodes[0].directory.peek(block)
        assert entry.state is DirState.MODIFIED
        assert entry.owner == 1
        assert machine.nodes[1].hierarchy.l2.probe(block).data == 3
        assert_coherent(machine)


class TestWriteBufferSemantics:
    def test_read_forwarded_from_write_buffer(self):
        _machine, stats = run_scripted(
            {1: [("w", ("blk", 0)), ("r", ("blk", 0))]}, blocks=1, home=0
        )
        assert stats.read_counts["wb"] == 1

    def test_full_write_buffer_stalls(self):
        config = tiny_config(write_buffer_entries=2)
        scripts = {1: [("w", ("blk", i)) for i in range(16)]}
        machine, _stats = run_scripted(scripts, config=config, blocks=16, home=0)
        assert machine.nodes[1].write_buffer.full_stalls > 0
        assert machine.nodes[1].processor.wb_stall_cycles > 0
        assert_coherent(machine)

    def test_barrier_drains_write_buffer(self):
        app = ScriptedApp(
            {
                1: [("w", ("blk", 0)), ("barrier", 1)],
                2: [("barrier", 1), ("r", ("blk", 0))],
                0: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1,
            home=0,
        )
        from repro.system.machine import Machine

        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        reads = [v for _op, a, v, _t in machine.nodes[2].processor.value_trace
                 if a == block]
        assert reads == [1]  # release semantics: write visible after barrier


class TestMessageAccounting:
    def test_no_stray_messages_after_quiesce(self):
        machine, _stats = run_scripted(
            {p: [("r", ("blk", p % 2)), ("w", ("blk", p % 2))]
             for p in range(4)},
            blocks=2,
            home=0,
        )
        assert machine.sim.pending == 0
        assert (machine.fabric.stats.msgs_injected
                == machine.fabric.stats.msgs_delivered
                + machine.fabric.stats.switch_replies)

    def test_outstanding_mshrs_empty_at_end(self):
        machine, _stats = run_scripted(
            {p: [("r", ("blk", 0))] for p in range(4)}, blocks=1, home=0
        )
        for node in machine.nodes:
            assert node.l2ctrl.outstanding == 0
