"""Unit tests for Timeline and FifoServer resources."""

from repro.sim.engine import Simulator
from repro.sim.resource import FifoServer, Timeline


class TestTimeline:
    def test_idle_grant_is_immediate(self):
        sim = Simulator()
        tl = Timeline(sim)
        assert tl.reserve(10) == 0

    def test_back_to_back_reservations_queue(self):
        sim = Simulator()
        tl = Timeline(sim)
        assert tl.reserve(10) == 0
        assert tl.reserve(10) == 10
        assert tl.reserve(5) == 20

    def test_earliest_defers_grant(self):
        sim = Simulator()
        tl = Timeline(sim)
        assert tl.reserve(10, earliest=100) == 100

    def test_earliest_in_past_is_clamped_to_now(self):
        sim = Simulator()
        sim.schedule(50, lambda: None)
        sim.run()
        tl = Timeline(sim)
        assert tl.reserve(10, earliest=5) == 50

    def test_gap_then_new_request(self):
        sim = Simulator()
        tl = Timeline(sim)
        tl.reserve(10)  # busy [0, 10)
        assert tl.reserve(10, earliest=50) == 50  # idle gap is not back-filled

    def test_free_at(self):
        sim = Simulator()
        tl = Timeline(sim)
        tl.reserve(10)
        assert tl.free_at() == 10

    def test_is_busy(self):
        sim = Simulator()
        tl = Timeline(sim)
        assert not tl.is_busy()
        tl.reserve(10)
        assert tl.is_busy()

    def test_busy_cycles_accumulate(self):
        sim = Simulator()
        tl = Timeline(sim)
        tl.reserve(10)
        tl.reserve(7)
        assert tl.busy_cycles == 17

    def test_queueing_delay_statistics(self):
        sim = Simulator()
        tl = Timeline(sim)
        tl.reserve(10)  # no wait
        tl.reserve(10)  # waits 10
        assert tl.queued_cycles == 10
        assert tl.mean_queueing_delay() == 5.0

    def test_mean_queueing_delay_empty(self):
        sim = Simulator()
        tl = Timeline(sim)
        assert tl.mean_queueing_delay() == 0.0

    def test_utilization(self):
        sim = Simulator()
        tl = Timeline(sim)
        tl.reserve(30)
        sim.schedule(100, lambda: None)
        sim.run()
        assert tl.utilization() == 0.3

    def test_utilization_zero_time(self):
        sim = Simulator()
        tl = Timeline(sim)
        assert tl.utilization() == 0.0


class TestFifoServer:
    def test_serves_in_order(self):
        sim = Simulator()
        served = []
        server = FifoServer(sim, service=lambda r: 10, done=served.append)
        server.submit("a")
        server.submit("b")
        sim.run()
        assert served == ["a", "b"]
        assert sim.now == 20

    def test_service_time_from_request(self):
        sim = Simulator()
        finished = {}
        server = FifoServer(
            sim, service=lambda r: r, done=lambda r: finished.setdefault(r, sim.now)
        )
        server.submit(5)
        server.submit(3)
        sim.run()
        assert finished == {5: 5, 3: 8}

    def test_depth_counts_waiting_only(self):
        sim = Simulator()
        server = FifoServer(sim, service=lambda r: 10)
        server.submit("a")
        server.submit("b")
        server.submit("c")
        assert server.depth == 2

    def test_idle_server_starts_immediately(self):
        sim = Simulator()
        done_at = []
        server = FifoServer(sim, service=lambda r: 4, done=lambda r: done_at.append(sim.now))
        server.submit("x")
        sim.run()
        assert done_at == [4]

    def test_queueing_stats(self):
        sim = Simulator()
        server = FifoServer(sim, service=lambda r: 10)
        server.submit("a")
        server.submit("b")
        sim.run()
        assert server.served == 2
        assert server.mean_queueing_delay() == 5.0

    def test_resubmission_after_drain(self):
        sim = Simulator()
        served = []
        server = FifoServer(sim, service=lambda r: 2, done=served.append)
        server.submit(1)
        sim.run()
        server.submit(2)
        sim.run()
        assert served == [1, 2]

    def test_busy_cycles(self):
        sim = Simulator()
        server = FifoServer(sim, service=lambda r: 7)
        server.submit("a")
        server.submit("b")
        sim.run()
        assert server.busy_cycles == 14
