"""Tests for the repro-sim command-line interface."""

import pytest

from repro.simcli import build_parser, main


class TestParser:
    def test_app_and_replay_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--app", "GE", "--replay", "x.trace"])

    def test_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--design", "sc"])

    def test_design_choices(self):
        args = build_parser().parse_args(["--app", "GE", "--design", "sc+"])
        assert args.design == "sc+"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--app", "GE", "--design", "huge"])

    def test_bad_param_rejected_at_run(self):
        with pytest.raises(SystemExit):
            main(["--app", "GE", "--param", "nonsense"])


class TestRuns:
    def test_base_run(self, capsys):
        rc = main(["--app", "GE", "--param", "n=8", "--nodes", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution time:" in out
        assert "design: base" in out

    def test_switch_cache_run_verbose(self, capsys):
        rc = main(["--app", "GE", "--param", "n=12", "--nodes", "4",
                   "--design", "sc", "--sc-size", "1024", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "switch caches:" in out
        assert "switch" in out

    def test_netcache_run(self, capsys):
        rc = main(["--app", "MM", "--param", "n=8", "--nodes", "4",
                   "--design", "nc"])
        assert rc == 0
        assert "design: NC-" in capsys.readouterr().out

    def test_mesi_run(self, capsys):
        rc = main(["--app", "SOR", "--param", "n=12", "--param",
                   "iterations=1", "--nodes", "4", "--protocol", "mesi"])
        assert rc == 0
        assert "protocol: mesi" in capsys.readouterr().out

    def test_record_then_replay(self, tmp_path, capsys):
        trace = str(tmp_path / "ge.trace")
        rc = main(["--app", "GE", "--param", "n=8", "--nodes", "4",
                   "--record", trace])
        assert rc == 0
        assert "recorded" in capsys.readouterr().out
        rc = main(["--replay", trace, "--nodes", "4", "--design", "sc",
                   "--sc-size", "512"])
        assert rc == 0
        assert "execution time:" in capsys.readouterr().out

    def test_trace_and_metrics_outputs(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "ge.json"
        jsonl_path = tmp_path / "ge.jsonl"
        metrics_path = tmp_path / "ge-metrics.json"
        rc = main(["--app", "GE", "--param", "n=8", "--nodes", "4",
                   "--design", "sc", "--sc-size", "512",
                   "--trace", str(trace_path),
                   "--trace-jsonl", str(jsonl_path),
                   "--metrics", str(metrics_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        metrics = json.loads(metrics_path.read_text())
        assert any(k.startswith("read_latency/") for k in metrics["histograms"])
        assert metrics["series"]
        lines = jsonl_path.read_text().splitlines()
        assert lines and all(json.loads(line)["name"] for line in lines)


class TestMachineSummary:
    def test_summary_renders_after_run(self):
        from repro.apps import GaussianElimination
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        machine = Machine(SystemConfig(num_nodes=4, l1_size=1024,
                                       l2_size=4096, switch_cache_size=512))
        machine.run(GaussianElimination(n=8))
        text = machine.summary()
        assert "execution time:" in text
        assert "switch caches:" in text
        assert "Read latency by service class" in text

    def test_summary_before_run(self):
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        machine = Machine(SystemConfig(num_nodes=4))
        text = machine.summary()
        assert "machine:" in text


class TestExperimentsJsonExport:
    def test_json_written_and_parseable(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main as exp_main

        rc = exp_main(["run", "--exp", "T1", "--json", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "T1.json").read_text())
        assert payload["id"] == "T1"
        assert payload["data"]["rows"]

    def test_tuple_keys_stringified(self):
        from repro.experiments.cli import _jsonify

        data = {("GE", 64): {"x": 1}, "plain": [1, (2, 3)]}
        out = _jsonify(data)
        assert out["GE|64"] == {"x": 1}
        assert out["plain"] == [1, [2, 3]]
