"""Differential tests: integer-coded hot state vs the object models.

PR 6 recodes the simulator's hot state — directory sharer sets become int
bitmasks, cache sets become struct-of-arrays int lists, message kinds get
table-driven predicates, and worms recycle through a per-machine pool —
while keeping every simulation bit-identical.  The original object models
survive as ``REPRO_STATE=obj`` (DESIGN.md §10), exactly as the heap engine
backs the calendar queue (§9), and these tests hold the two halves
together:

* lockstep fuzzers drive a coded and an object instance through one
  seeded op-script, comparing every observable after every op;
* a golden test pins the seeded random-replacement victim to the *old*
  algorithm (``rng.choice(sorted(tags))``) computed independently;
* full machines run every paper app under both models and must agree on
  the cycle count, the event count, and every statistics counter.
"""

import random

import pytest

from repro.cache.array import CacheArray, CacheArrayObj, make_cache_array
from repro.cache.states import (
    CODE_EXCLUSIVE,
    CODE_INVALID,
    CODE_MODIFIED,
    CODE_SHARED,
    LINE_STATE_BY_CODE,
    STATE_ENV,
    LineState,
    state_model,
)
from repro.coherence.directory import DirEntry, DirEntryObj, Directory
from repro.errors import ConfigError, ProtocolError
from repro.network.message import (
    CARRIES_DATA,
    INTERCEPTABLE,
    SNOOPS_SWITCH_CACHES,
    SWITCH_CACHEABLE,
    Message,
    MessagePool,
    MsgKind,
)

STATE_MODELS = ("coded", "obj")


# ----------------------------------------------------------------------
# state-model selection
# ----------------------------------------------------------------------
def test_state_model_env(monkeypatch):
    monkeypatch.delenv(STATE_ENV, raising=False)
    assert state_model() == "coded"
    assert isinstance(make_cache_array(512, 32, 2), CacheArray)
    assert isinstance(Directory(0, 32).entry(0), DirEntry)
    assert not isinstance(Directory(0, 32).entry(0), DirEntryObj)
    monkeypatch.setenv(STATE_ENV, "obj")
    assert state_model() == "obj"
    assert isinstance(make_cache_array(512, 32, 2), CacheArrayObj)
    assert isinstance(Directory(0, 32).entry(0), DirEntryObj)


def test_unknown_state_model_rejected(monkeypatch):
    monkeypatch.setenv(STATE_ENV, "simd")
    with pytest.raises(ConfigError):
        state_model()


def test_line_state_codes_round_trip():
    assert (CODE_INVALID, CODE_SHARED, CODE_EXCLUSIVE, CODE_MODIFIED) == (
        0, 1, 2, 3,
    )
    for state in LineState:
        assert LINE_STATE_BY_CODE[state.code] is state
        assert state.readable() == (state.code > CODE_INVALID)
        assert state.writable() == (state.code >= CODE_EXCLUSIVE)
        assert state.owned() == (state.code >= CODE_EXCLUSIVE)


# ----------------------------------------------------------------------
# cache-array lockstep fuzz
# ----------------------------------------------------------------------
def _array_pair(replacement):
    kwargs = dict(size=512, block_size=32, assoc=2, replacement=replacement)
    return (
        make_cache_array(model="coded", **kwargs),
        make_cache_array(model="obj", **kwargs),
    )


def _array_observables(arr):
    resident = sorted(
        (addr, line.tag, line.state, line.data)
        for addr, line in arr.resident_blocks()
    )
    return (
        arr.hits, arr.misses, arr.evictions, arr.invalidations,
        arr.occupancy(),
        tuple(arr.set_len(s) for s in range(arr.num_sets)),
        tuple(resident),
    )


def _lockstep_arrays(seed, replacement, ops=600):
    """One seeded op-script through both models, compared every step."""
    rng = random.Random(seed)
    # a small address pool over few sets forces conflicts and evictions
    addrs = [b * 32 for b in range(64)]
    states = (LineState.SHARED, LineState.EXCLUSIVE, LineState.MODIFIED,
              LineState.INVALID)
    coded, obj = _array_pair(replacement)
    for op_idx in range(ops):
        roll = rng.random()
        addr = rng.choice(addrs)
        if roll < 0.35:
            state = rng.choice(states)
            data = rng.randrange(1 << 16)
            assert coded.insert(addr, state, data) == obj.insert(
                addr, state, data
            ), (op_idx, "insert", addr)
        elif roll < 0.50:
            a, b = coded.lookup(addr), obj.lookup(addr)
            assert (a is None) == (b is None), (op_idx, "lookup", addr)
            if a is not None:
                assert (a.tag, a.state, a.data) == (b.tag, b.state, b.data)
        elif roll < 0.58:
            a, b = coded.probe(addr), obj.probe(addr)
            assert (a is None) == (b is None), (op_idx, "probe", addr)
            if a is not None:
                assert (a.state, a.data) == (b.state, b.data)
        elif roll < 0.64:
            assert coded.probe_data(addr) == obj.probe_data(addr)
            assert coded.probe_state(addr) == obj.probe_state(addr)
        elif roll < 0.70:
            assert coded.lookup_data(addr) == obj.lookup_data(addr)
            assert coded.lookup_state(addr) == obj.lookup_state(addr)
        elif roll < 0.76:
            data = rng.randrange(1 << 16)
            assert coded.write_owned(addr, data) == obj.write_owned(addr, data)
        elif roll < 0.80:
            data = rng.randrange(1 << 16)
            assert coded.set_data(addr, data) == obj.set_data(addr, data)
        elif roll < 0.84:
            assert coded.downgrade_owned(addr) == obj.downgrade_owned(addr)
        elif roll < 0.90:
            assert coded.invalidate(addr) == obj.invalidate(addr)
        elif roll < 0.96:
            state = rng.choice(states)
            outcomes = []
            for arr in (coded, obj):
                try:
                    arr.set_state(addr, state)
                    outcomes.append("ok")
                except KeyError:
                    outcomes.append("keyerror")
            assert outcomes[0] == outcomes[1], (op_idx, "set_state", addr)
        else:
            coded.clear()
            obj.clear()
        assert _array_observables(coded) == _array_observables(obj), (
            op_idx, "observables",
        )


@pytest.mark.parametrize("replacement", CacheArray.REPLACEMENT_POLICIES)
@pytest.mark.parametrize("seed", range(4))
def test_array_lockstep_fuzz(seed, replacement):
    _lockstep_arrays(seed, replacement)


def test_array_lockstep_fuzz_long():
    _lockstep_arrays(seed=1234, replacement="random", ops=3000)


def test_random_victim_matches_legacy_choice():
    """The coded random victim must equal ``rng.choice(sorted(tags))``.

    The object model used to re-sort the set per eviction and draw with
    ``random.Random.choice``; the coded model keeps the occupied prefix
    tag-sorted and draws an index.  Both are pinned here against the old
    algorithm computed independently with a twin RNG.
    """
    for model in STATE_MODELS:
        arr = make_cache_array(
            256, 32, 4, replacement="random", model=model
        )  # 2 sets, 4 ways
        twin = random.Random(0xCAE5A)  # same default seed as the array
        resident = []
        for tag in (7, 3, 11, 5):  # insertion order deliberately unsorted
            addr = (tag * arr.num_sets) * 32  # all land in set 0
            arr.insert(addr, LineState.SHARED, tag)
            resident.append(tag)
        victim = arr.insert((13 * arr.num_sets) * 32, LineState.SHARED, 13)
        expected_tag = twin.choice(sorted(resident))
        assert victim is not None, model
        assert victim[0] == (expected_tag * arr.num_sets) * 32, model


def test_invalid_state_lines_occupy_slots():
    """INVALID-state lines stay resident-but-unreadable in both models."""
    for model in STATE_MODELS:
        arr = make_cache_array(256, 32, 4, model=model)
        arr.insert(0, LineState.INVALID, 1)
        assert arr.probe(0) is None, model
        assert arr.occupancy() == 1, model  # the slot is held
        assert arr.invalidate(0) is None, model  # nothing valid to purge
        assert arr.occupancy() == 1, model
        arr.insert(0, LineState.SHARED, 2)  # in-place revalidation
        assert arr.occupancy() == 1 and arr.evictions == 0, model
        assert arr.probe(0).data == 2, model


# ----------------------------------------------------------------------
# directory lockstep fuzz
# ----------------------------------------------------------------------
def _entry_observables(d):
    out = []
    for addr, entry in sorted(d.entries()):
        out.append((
            addr, entry.state, entry.owner, entry.version,
            entry.num_sharers(), tuple(entry.sorted_sharers()),
            set(entry.sharers),
        ))
    return out


def _lockstep_directories(seed, ops=500, nodes=16):
    rng = random.Random(seed)
    mask_dir = Directory(0, 64, model="coded")
    set_dir = Directory(0, 64, model="obj")
    blocks = [b * 64 for b in range(8)]
    for op_idx in range(ops):
        roll = rng.random()
        block = rng.choice(blocks)
        node = rng.randrange(nodes)
        pair = (mask_dir, set_dir)
        if roll < 0.40:
            outcomes = []
            for d in pair:
                try:
                    d.add_sharer(block, node)
                    outcomes.append("ok")
                except ProtocolError:
                    outcomes.append("protoerr")
            assert outcomes[0] == outcomes[1], (op_idx, "add_sharer")
        elif roll < 0.55:
            version = rng.randrange(1 << 12)
            for d in pair:
                d.set_owner(block, node, version=version)
        elif roll < 0.70:
            version = rng.randrange(4)
            outcomes = []
            for d in pair:
                try:
                    d.writeback(block, node, version=version)
                    outcomes.append("ok")
                except ProtocolError:
                    outcomes.append("protoerr")
            assert outcomes[0] == outcomes[1], (op_idx, "writeback")
        elif roll < 0.85:
            assert mask_dir.clear_sharers(block) == set_dir.clear_sharers(
                block
            ), (op_idx, "clear_sharers")
        else:
            e_m, e_s = mask_dir.entry(block), set_dir.entry(block)
            assert e_m.has_sharer(node) == e_s.has_sharer(node)
            assert mask_dir.version_of(block) == set_dir.version_of(block)
            assert (mask_dir.peek(block) is None) == (
                set_dir.peek(block) is None
            )
        assert _entry_observables(mask_dir) == _entry_observables(set_dir), (
            op_idx, "observables",
        )


@pytest.mark.parametrize("seed", range(6))
def test_directory_lockstep_fuzz(seed):
    _lockstep_directories(seed)


def test_sorted_sharers_is_ascending():
    d = Directory(0, 64, model="coded")
    for node in (9, 2, 14, 0, 5):
        d.add_sharer(0x40, node)
    assert d.entry(0x40).sorted_sharers() == [0, 2, 5, 9, 14]
    assert d.entry(0x40).sharers == {0, 2, 5, 9, 14}


# ----------------------------------------------------------------------
# message kinds and the worm pool
# ----------------------------------------------------------------------
def test_kind_tables_match_properties():
    for kind in MsgKind:
        assert kind.carries_data == CARRIES_DATA[kind.code]
        assert kind.switch_cacheable == SWITCH_CACHEABLE[kind.code]
        assert kind.interceptable == INTERCEPTABLE[kind.code]
        assert kind.snoops_switch_caches == SNOOPS_SWITCH_CACHES[kind.code]
    data_kinds = {k for k in MsgKind if k.carries_data}
    assert data_kinds == {
        MsgKind.DATA_S, MsgKind.DATA_X, MsgKind.DATA_E,
        MsgKind.RECALL_REPLY, MsgKind.WRITEBACK,
    }
    assert [k.code for k in MsgKind] == list(range(len(MsgKind)))


def test_pool_id_streams_are_independent():
    a, b = MessagePool(64), MessagePool(64)
    ids_a = [a.make(MsgKind.READ, 0, 1, 0x40).id for _ in range(3)]
    ids_b = [b.make(MsgKind.READ, 0, 1, 0x40).id for _ in range(3)]
    assert ids_a == [0, 1, 2]
    assert ids_b == [0, 1, 2]  # a second machine replays the same stream


def test_pool_default_flits_by_kind():
    pool = MessagePool(block_size=64)
    assert pool.make(MsgKind.READ, 0, 1, 0x40).flits == 1
    assert pool.make(MsgKind.DATA_S, 1, 0, 0x40, data=7).flits == 1 + 64 // 8
    # RECALL_REPLY is a data kind even when it carries no payload
    no_data = pool.make(
        MsgKind.RECALL_REPLY, 1, 0, 0x40, payload={"no_data": True}
    )
    assert no_data.flits == 1 + 64 // 8
    assert pool.make(MsgKind.DATA_S, 1, 0, 0x40, flits=3).flits == 3


def test_pool_recycles_unreferenced_worms():
    pool = MessagePool(64)
    holder = [pool.make(MsgKind.INV, 0, 1, 0x40, payload={"x": 1})]
    msg = holder[0]
    msg.trace.append((0, 0))
    # refs here: `msg` + `holder[0]` + release's parameter + getrefcount
    pool.release(msg)
    assert len(pool._free) == 1
    reused = pool.make(MsgKind.INV_ACK, 1, 0, 0x80)
    assert reused is msg  # the worm was recycled...
    assert reused.id == 1 and reused.kind is MsgKind.INV_ACK
    assert reused.payload == {} and reused.trace == []  # ...fully reset
    assert reused.route is None and reused.hops is None
    assert reused.created_at == -1 and reused.delivered_at == -1


def test_pool_release_vetoed_by_retained_reference():
    pool = MessagePool(64)
    msg = pool.make(MsgKind.DATA_S, 0, 1, 0x40, data=9)
    retainer = {"reply_msg": msg}  # e.g. a Transaction keeps the reply
    holder = [msg]
    pool.release(msg)
    assert pool._free == []  # the extra reference vetoes reuse
    assert retainer["reply_msg"].data == 9  # retained worm untouched
    del holder


def test_bare_message_uses_global_fallback_ids():
    first = Message(MsgKind.READ, 0, 1, 0x40, flits=1)
    second = Message(MsgKind.READ, 0, 1, 0x40, flits=1)
    assert second.id == first.id + 1
    assert Message(MsgKind.READ, 0, 1, 0x40, flits=1, msg_id=77).id == 77


# ----------------------------------------------------------------------
# whole-machine cross-model identity (every paper app)
# ----------------------------------------------------------------------
def _machine_fingerprint(app_name):
    from repro.experiments.common import make_app
    from repro.system.machine import Machine
    from repro.system.presets import switch_cache_config

    machine = Machine(switch_cache_config(4), sanitize=False)
    stats = machine.run(make_app(app_name, "quick"))
    assert machine.check_coherence() == []
    return (
        stats.exec_time,
        machine.sim.now,
        machine.sim.events_fired,
        dict(stats.read_counts),
        tuple(stats.per_node_reads),
        machine.fabric.stats.msgs_delivered,
        machine.pool._next_id,  # the full message-id stream length
    )


@pytest.mark.parametrize(
    "app_name", ("FWA", "GS", "GE", "MM", "SOR", "FFT")
)
def test_machine_identical_across_state_models(app_name, monkeypatch):
    results = {}
    for model in STATE_MODELS:
        monkeypatch.setenv(STATE_ENV, model)
        results[model] = _machine_fingerprint(app_name)
    assert results["coded"] == results["obj"]
