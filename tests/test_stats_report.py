"""Tests for statistics aggregation and report rendering."""

from repro.coherence.messages import Transaction
from repro.stats.counters import MachineStats
from repro.stats.latency import breakdown_table, format_bars, service_bars
from repro.stats.report import format_series, format_table, percent


def read_txn(node=1, home=0, addr=0x40, served_by="remote_mem", stage=None,
             issued=0, completed=100, data=0):
    txn = Transaction("read", addr, node, home, 64, issued)
    txn.completed_at = completed
    txn.served_by = served_by
    txn.served_stage = stage
    txn.data = data
    return txn


class TestMachineStats:
    def test_read_hit_recording(self):
        stats = MachineStats(4)
        stats.record_read_hit(0, "l1")
        stats.record_read_hit(0, "l2")
        stats.record_read_hit(1, "wb")
        assert stats.read_counts["l1"] == 1
        assert stats.total_reads() == 3
        assert stats.per_node_reads[0] == 2

    def test_read_txn_recording(self):
        stats = MachineStats(4)
        stats.record_read_txn(1, read_txn(), stall=80)
        assert stats.read_counts["remote_mem"] == 1
        assert stats.read_latency["remote_mem"] == 80
        assert stats.mean_latency("remote_mem") == 80.0

    def test_switch_stage_attribution(self):
        stats = MachineStats(4)
        stats.record_read_txn(1, read_txn(served_by="switch", stage=2), 50)
        stats.record_read_txn(1, read_txn(served_by="switch", stage=2), 50)
        assert stats.switch_hits_by_stage == {2: 2}

    def test_remote_reads_classification(self):
        stats = MachineStats(4)
        stats.record_read_hit(0, "l1")
        stats.record_read_txn(0, read_txn(served_by="local_mem"), 60)
        stats.record_read_txn(0, read_txn(served_by="remote_mem"), 120)
        stats.record_read_txn(0, read_txn(served_by="owner"), 150)
        stats.record_read_txn(0, read_txn(served_by="switch", stage=1), 70)
        assert stats.remote_reads() == 3
        assert stats.reads_at_remote_memory() == 2
        assert stats.shared_reads() == 4

    def test_service_distribution_sums_to_one(self):
        stats = MachineStats(4)
        stats.record_read_hit(0, "l1")
        stats.record_read_txn(0, read_txn(), 100)
        dist = stats.service_distribution()
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_service_distribution_empty(self):
        dist = MachineStats(4).service_distribution()
        assert all(v == 0.0 for v in dist.values())

    def test_finish_times_set_exec_time(self):
        stats = MachineStats(2)
        stats.record_finish(0, 500)
        assert stats.exec_time is None
        stats.record_finish(1, 900)
        assert stats.exec_time == 900

    def test_write_txn_recording(self):
        stats = MachineStats(4)
        txn = Transaction("write", 0x40, 1, 0, 64, 0)
        txn.completed_at = 200
        stats.record_write_txn(1, txn)
        up = Transaction("upgrade", 0x80, 1, 0, 64, 0)
        up.completed_at = 100
        stats.record_write_txn(1, up)
        assert stats.writes_completed == 1
        assert stats.upgrades_completed == 1
        assert stats.write_latency == 300

    def test_sharing_histogram(self):
        stats = MachineStats(4)
        stats.record_read_txn(0, read_txn(addr=0x40, data=0), 10)
        stats.record_read_txn(1, read_txn(node=1, addr=0x40, data=0), 10)
        stats.record_read_txn(2, read_txn(node=2, addr=0x80, data=0), 10)
        hist = stats.sharing_histogram(4)
        assert hist[2] == 2  # two reads to the 2-reader block
        assert hist[1] == 1
        assert 1.0 < stats.mean_sharing_degree() < 2.0

    def test_ideal_global_cache_tracking(self):
        stats = MachineStats(4)
        stats.record_read_txn(0, read_txn(addr=0x40, data=0), 10)
        stats.record_read_txn(1, read_txn(node=1, addr=0x40, data=0), 10)
        stats.record_read_txn(2, read_txn(node=2, addr=0x40, data=1), 10)
        assert stats.ideal_global_hits == 1
        assert stats.ideal_global_misses == 2
        assert abs(stats.ideal_global_hit_rate() - 1 / 3) < 1e-9

    def test_mean_remote_read_latency(self):
        stats = MachineStats(4)
        stats.record_read_txn(0, read_txn(served_by="remote_mem"), 100)
        stats.record_read_txn(0, read_txn(served_by="switch", stage=0), 40)
        assert stats.mean_remote_read_latency() == 70.0

    def test_mean_remote_read_latency_switch_only(self):
        # every remote read intercepted by a switch cache: the mean must
        # come entirely from the switch class, not divide by zero on the
        # empty memory classes
        stats = MachineStats(4)
        stats.record_read_hit(0, "l1")
        stats.record_read_txn(0, read_txn(served_by="switch", stage=1), 40)
        stats.record_read_txn(1, read_txn(served_by="switch", stage=2), 60)
        assert stats.mean_remote_read_latency() == 50.0
        assert stats.reads_at_remote_memory() == 0
        assert stats.remote_reads() == 2

    def test_mean_remote_read_latency_no_remote_reads(self):
        stats = MachineStats(4)
        stats.record_read_hit(0, "l1")
        assert stats.mean_remote_read_latency() == 0.0


class TestPayloadRoundTrip:
    def test_round_trip_with_multiple_procs_per_node(self):
        # A6-shaped machine: 4 nodes x 2 procs — per-proc indices exceed
        # the node count, so finish times and per-proc read attribution
        # must survive the payload round-trip unchanged
        num_procs = 8
        stats = MachineStats(num_procs)
        for proc in range(num_procs):
            stats.record_read_hit(proc, "l1")
            stats.record_read_txn(
                proc, read_txn(node=proc, addr=0x40, data=0), 50 + proc
            )
            stats.record_finish(proc, 1000 + proc)
        stats.record_read_txn(7, read_txn(node=7, served_by="switch",
                                          stage=1), 30)
        payload = stats.to_payload()
        rebuilt = MachineStats.from_payload(payload)
        assert rebuilt.to_payload() == payload
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.exec_time == 1007
        assert rebuilt.per_node_reads == stats.per_node_reads
        assert len(rebuilt.finish_times) == num_procs
        assert rebuilt.sharing_histogram(8) == stats.sharing_histogram(8)
        assert rebuilt.mean_sharing_degree() == stats.mean_sharing_degree()

    def test_round_trip_on_real_multi_proc_machine(self):
        from repro.apps import GaussianElimination
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        machine = Machine(SystemConfig(
            num_nodes=4, procs_per_node=2, l1_size=512, l2_size=2048,
            switch_cache_size=512,
        ))
        stats = machine.run(GaussianElimination(n=8))
        rebuilt = MachineStats.from_payload(stats.to_payload())
        assert rebuilt.to_payload() == stats.to_payload()
        assert rebuilt.to_dict() == stats.to_dict()
        assert len(stats.finish_times) == 8  # one per proc, not per node


class TestZeroReadRendering:
    def test_breakdown_table_with_zero_reads(self):
        text = breakdown_table(MachineStats(4))
        assert "0 reads sampled" in text
        assert "0.0%" in text  # shares render as zero, no ZeroDivisionError

    def test_format_bars_all_zero_values(self):
        text = format_bars(["a", "bb"], [0.0, 0.0])
        lines = text.splitlines()
        assert len(lines) == 2
        assert "#" not in text  # zero peak draws empty bars

    def test_format_bars_empty(self):
        assert format_bars([], []) == ""

    def test_service_bars_with_zero_reads(self):
        assert service_bars(MachineStats(4)) == ""


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("a", "bbbb"), [(1, 2.5), ("xx", 3)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_format_table_with_title(self):
        text = format_table(("x",), [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_series(self):
        text = format_series("GE", [1, 2], [0.5, 0.25])
        assert text == "GE: (1, 0.500) (2, 0.250)"

    def test_percent(self):
        assert percent(0.4567) == "45.7%"

    def test_float_formatting_large_values(self):
        text = format_table(("v",), [(12345.678,)])
        assert "12345.7" in text
