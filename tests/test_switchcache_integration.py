"""Integration tests of the full switch-cache protocol on live machines.

These exercise the paper's central mechanisms end to end: in-network read
service, directory updates for switch-served reads, path snooping on
invalidations (including the writer's purge-only invalidation), and the
corrective invalidation for the dir-update/write race — always finishing
with the whole-machine coherence audit.
"""

import pytest

from repro.cache.states import DirState
from repro.system.machine import Machine

from conftest import (
    ScriptedApp,
    assert_coherent,
    assert_monotonic_reads,
    tiny_config,
)


def sc_config(**overrides):
    overrides.setdefault("switch_cache_size", 1024)
    return tiny_config(**overrides)


def run_app(app, config):
    machine = Machine(config)
    stats = machine.run(app)
    return machine, stats


class TestInNetworkService:
    def test_second_reader_served_by_switch(self):
        # proc 1 reads (populates switches on home->1), then proc 3 reads;
        # in the 4-node BMIN both paths share the turnaround switch
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1)],
                3: [("barrier", 1), ("r", ("blk", 0))],
                0: [("barrier", 1)],
                2: [("barrier", 1)],
            },
            blocks=1,
            home=0,
        )
        machine, stats = run_app(app, sc_config())
        assert stats.read_counts["switch"] == 1
        assert stats.read_counts["remote_mem"] == 1
        # the switch-served reader still appears in the directory
        entry = machine.nodes[0].directory.peek(app.block_addrs[0])
        assert entry.sharers == {1, 3}
        assert machine.nodes[0].home_ctrl.dir_updates == 1
        assert_coherent(machine)

    def test_switch_served_value_is_correct(self):
        app = ScriptedApp(
            {
                2: [("w", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
                1: [("barrier", 1), ("r", ("blk", 0)), ("barrier", 2)],
                3: [("barrier", 1), ("barrier", 2), ("r", ("blk", 0))],
                0: [("barrier", 1), ("barrier", 2)],
            },
            blocks=1,
            home=0,
        )
        machine, stats = run_app(app, sc_config())
        block = app.block_addrs[0]
        reads_3 = [v for _op, a, v, _t in machine.nodes[3].processor.value_trace
                   if a == block]
        assert reads_3 == [1]  # the written version, not a stale one
        assert_monotonic_reads(machine)
        assert_coherent(machine)

    def test_base_machine_has_no_switch_hits(self):
        app = ScriptedApp(
            {p: [("r", ("blk", 0))] for p in range(4)}, blocks=1, home=0
        )
        _machine, stats = run_app(app, tiny_config())
        assert stats.read_counts["switch"] == 0


class TestInvalidationCoverage:
    def test_write_purges_switch_copies_of_all_sharers(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
                3: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
                2: [("barrier", 1), ("w", ("blk", 0)), ("barrier", 2)],
                0: [("barrier", 1), ("barrier", 2)],
            },
            blocks=1,
            home=0,
        )
        machine, _stats = run_app(app, sc_config())
        block = app.block_addrs[0]
        leftovers = [
            (sid, a) for sid, a, _v in machine.fabric.switch_cache_blocks()
            if a == block
        ]
        assert leftovers == []
        totals = machine.switch_cache_stats()
        assert totals["purges"] >= 1
        assert_coherent(machine)

    def test_upgrade_sends_purge_only_inv_to_writer(self):
        # proc 1 reads (deposits on path home->1) then upgrades; the home
        # must clean that same path even though proc 1 keeps its L2 copy
        app = ScriptedApp(
            {1: [("r", ("blk", 0)), ("w", ("blk", 0))]}, blocks=1, home=0
        )
        machine, _stats = run_app(app, sc_config())
        block = app.block_addrs[0]
        assert machine.nodes[1].l2ctrl.upgrades_issued == 1
        # no stale copy of the block survives anywhere in the network
        stale = [a for _sid, a, _v in machine.fabric.switch_cache_blocks()
                 if a == block]
        assert stale == []
        # the writer still owns its line (purge_only did not invalidate it)
        entry = machine.nodes[0].directory.peek(block)
        assert entry.state is DirState.MODIFIED and entry.owner == 1
        assert_coherent(machine)

    def test_switch_cache_is_useful_after_purge_and_rewrite(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2),
                    ("r", ("blk", 0)), ("barrier", 3)],
                2: [("barrier", 1), ("w", ("blk", 0)), ("barrier", 2),
                    ("barrier", 3)],
                3: [("barrier", 1), ("barrier", 2), ("barrier", 3),
                    ("r", ("blk", 0))],
                0: [("barrier", 1), ("barrier", 2), ("barrier", 3)],
            },
            blocks=1,
            home=0,
        )
        machine, _stats = run_app(app, sc_config())
        block = app.block_addrs[0]
        reads_3 = [v for _op, a, v, _t in machine.nodes[3].processor.value_trace
                   if a == block]
        assert reads_3 == [1]
        assert_monotonic_reads(machine)
        assert_coherent(machine)


class TestDirUpdateRace:
    @pytest.mark.parametrize("padding", [0, 40, 80, 120, 160, 200, 240, 280])
    def test_race_between_switch_hit_and_write(self, padding):
        """A read races a write to the same block with varying skew.

        Depending on the padding the read may be served by a switch just
        before/after the invalidation passes; whatever interleaving
        occurs, the machine must quiesce coherent and each processor's
        observed versions stay monotonic.
        """
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1)],
                2: [("barrier", 1), ("w", ("blk", 0))],
                3: [("barrier", 1), ("work", padding), ("r", ("blk", 0))],
                0: [("barrier", 1)],
            },
            blocks=1,
            home=0,
        )
        machine, _stats = run_app(app, sc_config())
        assert_coherent(machine)
        assert_monotonic_reads(machine)

    def test_corrective_inv_counter_fires_somewhere(self):
        """Across the skew sweep at least one interleaving should exercise
        the corrective-invalidation path (dir-update arriving at a
        MODIFIED entry)."""
        fired = 0
        for padding in range(0, 400, 25):
            app = ScriptedApp(
                {
                    1: [("r", ("blk", 0)), ("barrier", 1)],
                    2: [("barrier", 1), ("w", ("blk", 0))],
                    3: [("barrier", 1), ("work", padding), ("r", ("blk", 0))],
                    0: [("barrier", 1)],
                },
                blocks=1,
                home=0,
            )
            machine, _stats = run_app(app, sc_config())
            fired += machine.nodes[0].home_ctrl.corrective_invs
            assert_coherent(machine)
        assert fired >= 1


class TestConfigurationKnobs:
    def test_stage_restriction_respected(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1)],
                3: [("barrier", 1), ("r", ("blk", 0))],
                0: [("barrier", 1)],
                2: [("barrier", 1)],
            },
            blocks=1,
            home=0,
        )
        machine, stats = run_app(
            app, sc_config(switch_cache_stages={1})
        )
        # stage-0 engines disabled: any hits must be attributed to stage 1
        for stage in stats.switch_hits_by_stage:
            assert stage == 1
        assert_coherent(machine)

    def test_banked_geometry_runs_coherently(self):
        app = ScriptedApp(
            {p: [("r", ("blk", b)) for b in range(4)] for p in range(4)},
            blocks=4,
            home=0,
        )
        machine, _stats = run_app(
            app, sc_config(switch_cache_banks=2)
        )
        assert_coherent(machine)

    def test_tiny_cache_evicts_but_stays_coherent(self):
        app = ScriptedApp(
            {p: [("r", ("blk", b)) for b in range(16)] for p in range(1, 4)},
            blocks=16,
            home=0,
        )
        machine, _stats = run_app(
            app, sc_config(switch_cache_size=128, switch_cache_assoc=1)
        )
        assert_coherent(machine)


class TestNetworkCacheComparator:
    def test_netcache_serves_refetch_after_eviction(self):
        # small L2 forces eviction; the network cache still holds the block
        config = tiny_config(
            netcache_size=4096, l2_size=512, l2_assoc=1, l1_size=256
        )
        scripts = {1: [("r", ("blk", i)) for i in range(16)]
                   + [("r", ("blk", 0))]}
        app = ScriptedApp(scripts, blocks=16, home=0)
        machine, stats = run_app(app, config)
        assert stats.read_counts["netcache"] >= 1
        assert_coherent(machine)

    def test_netcache_invalidated_on_write(self):
        config = tiny_config(netcache_size=4096)
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
                2: [("barrier", 1), ("w", ("blk", 0)), ("barrier", 2)],
                0: [("barrier", 1), ("barrier", 2)],
                3: [("barrier", 1), ("barrier", 2)],
            },
            blocks=1,
            home=0,
        )
        machine, _stats = run_app(app, config)
        assert machine.nodes[1].netcache.inv_purges >= 1
        assert_coherent(machine)

    def test_netcache_never_holds_local_blocks(self):
        config = tiny_config(netcache_size=4096)
        app = ScriptedApp({0: [("r", ("blk", 0))]}, blocks=1, home=0)
        machine, _stats = run_app(app, config)
        assert machine.nodes[0].netcache.fills == 0
