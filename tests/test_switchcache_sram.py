"""Unit tests for the CAESAR SRAM timing model (geometry, ports, banks)."""

import pytest

from repro.core.switchcache import SwitchCacheGeometry, SwitchCacheSRAM
from repro.errors import ConfigError
from repro.sim.engine import Simulator


class TestGeometry:
    def test_data_cycles_scale_with_width(self):
        assert SwitchCacheGeometry(block_size=64, output_width_bits=64).data_cycles == 8
        assert SwitchCacheGeometry(block_size=64, output_width_bits=128).data_cycles == 4
        assert SwitchCacheGeometry(block_size=64, output_width_bits=256).data_cycles == 2

    def test_paper_example_32b_block_64b_width(self):
        # "a cache with 32-byte blocks and a width of 64 bits will provide
        # 64 of 256 bits in each cache cycle" -> 4 cycles per block
        geo = SwitchCacheGeometry(size=1024, block_size=32, output_width_bits=64)
        assert geo.data_cycles == 4

    @pytest.mark.parametrize("banks", [3, 5, 8])
    def test_bad_bank_counts_rejected(self, banks):
        with pytest.raises(ConfigError):
            SwitchCacheGeometry(banks=banks)

    def test_width_must_divide_block(self):
        with pytest.raises(ConfigError):
            SwitchCacheGeometry(block_size=64, output_width_bits=192)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            SwitchCacheGeometry(output_width_bits=60)

    def test_bank_selection_interleaves_blocks(self):
        geo = SwitchCacheGeometry(banks=2, block_size=64)
        assert geo.bank_of(0) == 0
        assert geo.bank_of(64) == 1
        assert geo.bank_of(128) == 0

    def test_describe_names_design(self):
        assert "CAESAR+" in SwitchCacheGeometry(banks=2).describe()
        assert "CAESAR+" not in SwitchCacheGeometry(banks=1).describe()


class TestSramTiming:
    def make(self, **kw):
        sim = Simulator()
        return sim, SwitchCacheSRAM(sim, SwitchCacheGeometry(size=2048, **kw))

    def test_miss_costs_tag_only(self):
        _sim, sram = self.make()
        data, done = sram.read(0x40)
        assert data is None
        assert done == 1  # one tag cycle

    def test_hit_costs_tag_plus_stream(self):
        _sim, sram = self.make(output_width_bits=64)
        sram.write(0x40, 5)
        # write occupied tag [?] and data; a fresh read queues behind
        data, done = sram.read(0x40)
        assert data == 5
        assert done >= 1 + 8  # tag + 8 data cycles minimum

    def test_wider_output_is_faster(self):
        _s1, narrow = self.make(output_width_bits=64)
        _s2, wide = self.make(output_width_bits=256)
        narrow.write(0x40, 1)
        wide.write(0x40, 1)
        _d1, done_narrow = narrow.read(0x40)
        _d2, done_wide = wide.read(0x40)
        assert done_wide < done_narrow

    def test_banked_requests_overlap(self):
        _sim, sram = self.make(banks=2)
        sram.write(0, 1)      # bank 0
        sram.write(64, 2)     # bank 1
        # both writes' data streams overlap: the second is not delayed by
        # a full block time relative to the first
        free0 = sram.data_ports[0].free_at()
        free1 = sram.data_ports[1].free_at()
        assert abs(free0 - free1) <= sram.geo.tag_cycles

    def test_single_bank_requests_serialize(self):
        _sim, sram = self.make(banks=1)
        sram.write(0, 1)
        sram.write(64, 2)
        assert sram.data_ports[0].busy_cycles == 2 * sram.geo.data_cycles

    def test_snoop_uses_separate_port(self):
        _sim, sram = self.make()
        sram.write(0x40, 1)
        tag_busy_before = sram.tag_port.busy_cycles
        purged, _done = sram.snoop_invalidate(0x40)
        assert purged
        assert sram.tag_port.busy_cycles == tag_busy_before

    def test_snoop_miss_is_one_cycle(self):
        _sim, sram = self.make()
        purged, done = sram.snoop_invalidate(0x80)
        assert not purged
        assert done == 1

    def test_snoop_purge_costs_extra_cycle(self):
        _sim, sram = self.make()
        sram.write(0x40, 1)
        purged, done = sram.snoop_invalidate(0x40)
        assert purged
        assert done == 2

    def test_backlog_reporting(self):
        _sim, sram = self.make()
        assert sram.tag_backlog() == 0
        sram.read(0x40)
        assert sram.tag_backlog() == 1
        sram.write(0x80, 1)
        assert sram.data_backlog(0x80) > 0

    def test_occupancy(self):
        _sim, sram = self.make()
        sram.write(0, 1)
        sram.write(64, 2)
        assert sram.occupancy == 2
