"""Unit tests for barrier and lock managers, plus machine-level sync."""

import pytest

from repro.errors import SimulationError
from repro.node.sync import BarrierManager, LockManager
from repro.sim.engine import Simulator
from repro.system.machine import Machine

from conftest import ScriptedApp, assert_coherent, tiny_config


class TestBarrierManager:
    def test_releases_when_all_arrive(self):
        sim = Simulator()
        barrier = BarrierManager(sim, num_procs=3, wakeup_cycles=10)
        released = []
        for node in range(3):
            barrier.arrive(1, node, lambda n=node: released.append((n, sim.now)))
        sim.run()
        assert sorted(n for n, _t in released) == [0, 1, 2]
        assert all(t == 10 for _n, t in released)

    def test_no_release_until_last(self):
        sim = Simulator()
        barrier = BarrierManager(sim, num_procs=3)
        released = []
        barrier.arrive(1, 0, lambda: released.append(0))
        barrier.arrive(1, 1, lambda: released.append(1))
        sim.run()
        assert released == []
        assert barrier.waiting_at(1) == 2

    def test_double_arrival_rejected(self):
        sim = Simulator()
        barrier = BarrierManager(sim, num_procs=3)
        barrier.arrive(1, 0, lambda: None)
        with pytest.raises(SimulationError):
            barrier.arrive(1, 0, lambda: None)

    def test_independent_barrier_ids(self):
        sim = Simulator()
        barrier = BarrierManager(sim, num_procs=2)
        released = []
        barrier.arrive(1, 0, lambda: released.append("b1"))
        barrier.arrive(2, 0, lambda: released.append("b2"))
        barrier.arrive(2, 1, lambda: released.append("b2"))
        sim.run()
        assert released == ["b2", "b2"]

    def test_barrier_reusable_after_episode(self):
        sim = Simulator()
        barrier = BarrierManager(sim, num_procs=2)
        count = []
        for _episode in range(2):
            barrier.arrive(7, 0, lambda: count.append(0))
            barrier.arrive(7, 1, lambda: count.append(1))
            sim.run()
        assert len(count) == 4
        assert barrier.episodes == 2


class TestLockManager:
    def test_uncontended_acquire(self):
        sim = Simulator()
        locks = LockManager(sim)
        got = []
        locks.acquire(1, 0, lambda: got.append(0))
        sim.run()
        assert got == [0]
        assert locks.holder_of(1) == 0

    def test_contended_fifo_handoff(self):
        sim = Simulator()
        locks = LockManager(sim, handoff_cycles=5)
        order = []
        locks.acquire(1, 0, lambda: order.append(0))
        locks.acquire(1, 1, lambda: order.append(1))
        locks.acquire(1, 2, lambda: order.append(2))
        sim.run()
        assert order == [0]
        locks.release(1, 0)
        sim.run()
        assert order == [0, 1]
        locks.release(1, 1)
        sim.run()
        assert order == [0, 1, 2]
        assert locks.contended_acquires == 2

    def test_release_by_non_holder_rejected(self):
        sim = Simulator()
        locks = LockManager(sim)
        locks.acquire(1, 0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            locks.release(1, 3)

    def test_release_frees_lock(self):
        sim = Simulator()
        locks = LockManager(sim)
        locks.acquire(1, 0, lambda: None)
        sim.run()
        locks.release(1, 0)
        assert locks.holder_of(1) is None


class TestMachineSync:
    def test_barrier_orders_processors(self):
        # each processor records its finish through barrier timing; a
        # straggler (heavy work) delays everyone's release
        app = ScriptedApp(
            {
                0: [("work", 5000), ("barrier", 1)],
                1: [("barrier", 1)],
                2: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1,
        )
        machine = Machine(tiny_config())
        stats = machine.run(app)
        # nobody can finish before the straggler's 5000 cycles of work
        assert min(stats.finish_times.values()) >= 5000

    def test_lock_mutual_exclusion_traffic(self):
        app = ScriptedApp(
            {
                p: [("lock", 1), ("w", ("blk", 0)), ("unlock", 1)]
                for p in range(4)
            },
            blocks=1,
            home=0,
        )
        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        # all four critical sections executed: version is 4
        assert machine.memory_version(block) >= 0  # directory exists
        versions = [
            n.hierarchy.l2.probe(block).data
            for n in machine.nodes
            if n.hierarchy.l2.probe(block) is not None
            and n.hierarchy.l2.probe(block).state.writable()
        ]
        assert versions and versions[0] == 4
        assert machine.locks.acquires == 4
        assert_coherent(machine)

    def test_barrier_counter_generates_coherence_traffic(self):
        app = ScriptedApp(
            {p: [("barrier", 1)] for p in range(4)}, blocks=1
        )
        machine = Machine(tiny_config())
        machine.run(app)
        # the barrier fetch&inc migrated the counter block through all nodes
        counter = machine.sync_addr("barrier", 1)
        home = machine.nodes[machine.space.home_of(counter)]
        entry = home.directory.peek(counter)
        assert entry is not None
        assert_coherent(machine)

    def test_sync_stall_recorded(self):
        app = ScriptedApp(
            {
                0: [("work", 3000), ("barrier", 1)],
                1: [("barrier", 1)],
                2: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1,
        )
        machine = Machine(tiny_config())
        machine.run(app)
        assert machine.nodes[1].processor.sync_stall_cycles > 2000
