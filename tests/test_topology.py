"""Tests for BMIN geometry and turnaround routing.

The switch-cache protocol's correctness rests on two routing properties
(DESIGN.md Sec. 5): path uniqueness/validity and reversal symmetry.  Both
are property-tested here across machine sizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.network.topology import BminTopology


class TestGeometry:
    def test_16_node_shape(self):
        topo = BminTopology(16)
        assert topo.stages == 4
        assert topo.rows == 8
        assert len(topo.switches()) == 32

    def test_4_node_shape(self):
        topo = BminTopology(4)
        assert topo.stages == 2
        assert topo.rows == 2

    @pytest.mark.parametrize("n", [0, 1, 3, 12, 100])
    def test_bad_sizes_rejected(self, n):
        with pytest.raises(ConfigError):
            BminTopology(n)

    def test_node_attachment(self):
        topo = BminTopology(16)
        assert topo.node_switch(0) == (0, 0)
        assert topo.node_switch(1) == (0, 0)
        assert topo.node_switch(15) == (0, 7)
        assert topo.node_port(4) == 0
        assert topo.node_port(5) == 1

    def test_node_out_of_range(self):
        topo = BminTopology(16)
        with pytest.raises(ConfigError):
            topo.node_switch(16)

    def test_up_neighbors_butterfly(self):
        topo = BminTopology(16)
        assert set(topo.up_neighbors((0, 0))) == {(1, 0), (1, 1)}
        assert set(topo.up_neighbors((1, 2))) == {(2, 2), (2, 0)}

    def test_top_stage_has_no_up_neighbors(self):
        topo = BminTopology(16)
        assert topo.up_neighbors((3, 0)) == []

    def test_stage0_has_no_down_neighbors(self):
        topo = BminTopology(16)
        assert topo.down_neighbors((0, 0)) == []

    def test_up_down_symmetry(self):
        topo = BminTopology(16)
        for sid in topo.switches():
            for up in topo.up_neighbors(sid):
                assert sid in topo.down_neighbors(up)


class TestRouting:
    def test_same_node_is_empty(self):
        topo = BminTopology(16)
        assert topo.path(3, 3) == []

    def test_same_switch_single_hop(self):
        topo = BminTopology(16)
        assert topo.path(0, 1) == [(0, 0)]

    def test_path_starts_and_ends_at_attachment_switches(self):
        topo = BminTopology(16)
        path = topo.path(0, 15)
        assert path[0] == topo.node_switch(0)
        assert path[-1] == topo.node_switch(15)

    def test_turn_stage_examples(self):
        topo = BminTopology(16)
        assert topo.turn_stage(0, 1) == 0  # same switch
        assert topo.turn_stage(0, 2) == 1
        assert topo.turn_stage(0, 15) == 3

    def test_max_distance_path_length(self):
        topo = BminTopology(16)
        # ascend to stage 3 and back: 4 + 3 switches
        assert len(topo.path(0, 15)) == 7

    def test_path_caching_returns_equal_paths(self):
        topo = BminTopology(16)
        assert topo.path(2, 9) == topo.path(2, 9)


@pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
def test_all_pairs_paths_valid_unique_and_symmetric(n):
    topo = BminTopology(n)
    for a in range(n):
        for b in range(n):
            if a == b:
                continue
            path = topo.path(a, b)
            # starts/ends at the right stage-0 switches
            assert path[0] == topo.node_switch(a)
            assert path[-1] == topo.node_switch(b)
            # consecutive switches are physically connected
            for u, v in zip(path, path[1:]):
                assert topo.are_connected(u, v), (a, b, u, v)
            # no switch is visited twice (unique up-down path)
            assert len(set(path)) == len(path)
            # reversal symmetry: reply retraces the request
            assert path == list(reversed(topo.path(b, a)))


@pytest.mark.parametrize("n", [8, 16])
def test_tree_cover_property(n):
    """Any switch on the path home->x that also lies on y's request path
    to home appears on the home->y path — the invalidation-coverage
    argument for switch-served replies."""
    topo = BminTopology(n)
    for home in range(0, n, 3):
        for x in range(n):
            if x == home:
                continue
            path_hx = set(topo.path(home, x))
            for y in range(n):
                if y == home:
                    continue
                path_yh = topo.path(y, home)
                path_hy = set(topo.path(home, y))
                for switch in path_yh:
                    if switch in path_hx:
                        # a switch-cache copy could be served here; the
                        # reply retraces y's path, all of which must be
                        # covered by future invalidations home->y
                        assert switch in path_hy


@settings(max_examples=100, deadline=None)
@given(
    n_exp=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_property_turn_stage_bounds(n_exp, data):
    n = 1 << n_exp
    topo = BminTopology(n)
    a = data.draw(st.integers(min_value=0, max_value=n - 1))
    b = data.draw(st.integers(min_value=0, max_value=n - 1))
    t = topo.turn_stage(a, b)
    assert 0 <= t < topo.stages
    if a != b:
        # path length = 2 * turn_stage + 1 switches
        assert len(topo.path(a, b)) == 2 * t + 1
