"""Cross-validation of turnaround routing against networkx shortest paths."""

import networkx as nx
import pytest

from repro.network.topology import BminTopology


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_turnaround_paths_are_shortest(n):
    """The deterministic up-down path never exceeds the graph-theoretic
    shortest path (butterflies admit equal-length alternatives, but
    nothing shorter than ascend-to-LCA-and-descend)."""
    topo = BminTopology(n)
    graph = topo.to_networkx()
    for a in range(n):
        lengths = nx.single_source_shortest_path_length(graph, ("node", a))
        for b in range(n):
            if a == b:
                continue
            ours = len(topo.path(a, b)) + 1  # + final hop to the node
            shortest = lengths[("node", b)]
            assert ours == shortest, (a, b)


def test_graph_shape_16():
    topo = BminTopology(16)
    graph = topo.to_networkx()
    switch_vertices = [v for v in graph if v[0] == "sw"]
    node_vertices = [v for v in graph if v[0] == "node"]
    assert len(switch_vertices) == 32
    assert len(node_vertices) == 16
    # stage-0 switches: 2 nodes + 2 up links; middle: 2 down + 2 up
    for v in switch_vertices:
        _tag, stage, _row = v
        expected = 4 if stage < topo.stages - 1 else 2
        assert graph.degree(v) == expected


def test_graph_is_connected():
    for n in (4, 16, 64):
        graph = BminTopology(n).to_networkx()
        assert nx.is_connected(graph)


def test_bisection_scales_linearly():
    """The BMIN's bisection bandwidth scales with N (the paper's stated
    reason for choosing a MIN): edges crossing the top-stage cut == N/2
    per direction of the row space."""
    for n in (8, 16, 32):
        topo = BminTopology(n)
        graph = topo.to_networkx()
        top = topo.stages - 1
        # edges between stage top-1 and top whose rows differ in the
        # highest bit form the bisection
        crossing = [
            (u, v) for u, v in graph.edges
            if u[0] == "sw" and v[0] == "sw"
            and {u[1], v[1]} == {top - 1, top}
            and (u[2] ^ v[2]) >> (top - 1)
        ]
        assert len(crossing) == topo.rows
