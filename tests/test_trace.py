"""Tests for the trace-driven front-end (record / replay)."""

import io

import pytest

from repro.apps import GaussianElimination, TraceApplication, TraceRecorder
from repro.apps.trace import format_op, parse_line
from repro.errors import ConfigError
from repro.system.machine import Machine

from conftest import ScriptedApp, assert_coherent, tiny_config


class TestLineFormat:
    def test_memory_ops_hex(self):
        assert format_op(3, ("r", 0x1C0)) == "3 r 0x1c0"
        assert format_op(0, ("w", 64)) == "0 w 0x40"

    def test_control_ops_decimal(self):
        assert format_op(1, ("barrier", 7)) == "1 barrier 7"
        assert format_op(2, ("work", 100)) == "2 work 100"

    def test_parse_roundtrip(self):
        for proc, op in [(0, ("r", 0x40)), (3, ("w", 128)),
                         (1, ("work", 9)), (2, ("barrier", 4)),
                         (0, ("lock", 1)), (0, ("unlock", 1))]:
            assert parse_line(format_op(proc, op)) == (proc, op)

    def test_comments_and_blanks_ignored(self):
        assert parse_line("# a comment") is None
        assert parse_line("   ") is None

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigError):
            parse_line("1 r")
        with pytest.raises(ConfigError):
            parse_line("1 frob 0x40")

    def test_unserializable_op_rejected(self):
        with pytest.raises(ConfigError):
            format_op(0, ("frob", 1))


class TestRecordReplay:
    def _record(self):
        machine = Machine(tiny_config())
        recorder = TraceRecorder(GaussianElimination(n=8))
        stats = machine.run(recorder)
        return machine, recorder, stats

    def test_recorder_is_transparent(self):
        _machine, recorder, stats = self._record()
        plain = Machine(tiny_config()).run(GaussianElimination(n=8))
        assert stats.exec_time == plain.exec_time

    def test_replay_reproduces_run_exactly(self):
        _machine, recorder, original = self._record()
        replayed = Machine(tiny_config())
        stats = replayed.run(TraceApplication(recorder.dumps().splitlines()))
        assert stats.exec_time == original.exec_time
        assert stats.read_counts == original.read_counts
        assert_coherent(replayed)

    def test_save_and_load_file(self, tmp_path):
        _machine, recorder, original = self._record()
        path = str(tmp_path / "ge.trace")
        recorder.save(path)
        stats = Machine(tiny_config()).run(TraceApplication(path))
        assert stats.exec_time == original.exec_time

    def test_load_from_stream(self):
        _machine, recorder, original = self._record()
        stream = io.StringIO(recorder.dumps())
        stats = Machine(tiny_config()).run(TraceApplication(stream))
        assert stats.exec_time == original.exec_time

    def test_layout_preserves_homes(self):
        machine, recorder, _stats = self._record()
        text = recorder.dumps()
        replay_machine = Machine(tiny_config())
        app = TraceApplication(text.splitlines())
        app.setup(replay_machine)
        # every recorded address resolves to the same home as the original
        ge = recorder.app
        for i in range(8):
            addr = ge.a.addr(i, 0)
            assert (replay_machine.space.home_of(addr)
                    == machine.space.home_of(addr))

    def test_range_headers_present(self):
        _machine, recorder, _stats = self._record()
        text = recorder.dumps()
        assert text.startswith("#repro-trace v1")
        assert "#range" in text

    def test_replay_on_switch_cache_machine(self):
        _machine, recorder, _stats = self._record()
        machine = Machine(tiny_config(switch_cache_size=1024))
        stats = machine.run(TraceApplication(recorder.dumps().splitlines()))
        assert stats.read_counts["switch"] > 0
        assert_coherent(machine)


class TestValidation:
    def test_too_many_processors_rejected(self):
        trace = ["0 r 0x40", "7 r 0x40"]
        machine = Machine(tiny_config())  # 4 nodes
        with pytest.raises(ConfigError):
            machine.run(TraceApplication(trace))

    def test_layout_restore_requires_fresh_space(self):
        machine = Machine(tiny_config())
        machine.space.alloc(64, home=0)
        trace = ["#range 0x40 0x80 0", "0 r 0x40"]
        with pytest.raises(ConfigError):
            TraceApplication(trace).setup(machine)

    def test_bad_layout_row_rejected(self):
        machine = Machine(tiny_config())
        trace = ["#range 0x80 0x40 0"]
        with pytest.raises(ConfigError):
            TraceApplication(trace).setup(machine)

    def test_raw_trace_without_layout_runs(self):
        trace = ["0 r 0x4000", "1 w 0x4000", "0 barrier 1", "1 barrier 1",
                 "2 barrier 1", "3 barrier 1"]
        machine = Machine(tiny_config())
        stats = machine.run(TraceApplication(trace))
        assert stats.total_reads() >= 1
        assert_coherent(machine)

    def test_scripted_and_trace_equivalence(self):
        scripts = {p: [("r", ("blk", 0)), ("w", ("blk", 1))] for p in range(4)}
        machine = Machine(tiny_config())
        recorder = TraceRecorder(ScriptedApp(scripts, blocks=2, home=0))
        original = machine.run(recorder)
        replay = Machine(tiny_config()).run(
            TraceApplication(recorder.dumps().splitlines())
        )
        assert replay.exec_time == original.exec_time
