"""Tests for :mod:`repro.verify`: model checker, SCSan, determinism lint.

The mutation tests deliberately break the protocol (or the kernel) and
assert the analyzers notice — that is the evidence the tooling actually
guards the invariants rather than vacuously passing.
"""

from pathlib import Path

import pytest

from repro.coherence.messages import make_message
from repro.core.caesar import CaesarEngine
from repro.errors import ProtocolError, SanitizerError
from repro.network.message import MsgKind
from repro.node.node import Node
from repro.node.processor import Processor
from repro.system.machine import Machine
from repro.verify import lint_determinism
from repro.verify.modelcheck import MUTATIONS, check
from repro.verify.sanitize import Sanitizer, SanitizedSimulator

from conftest import ScriptedApp, tiny_config


# ----------------------------------------------------------------------
# model checker: exhaustive enumeration on trunk is violation-free
# ----------------------------------------------------------------------
class TestModelChecker:
    @pytest.mark.parametrize("protocol", ["msi", "mesi"])
    @pytest.mark.parametrize("switch", [False, True])
    def test_two_node_exhaustive(self, protocol, switch):
        result = check(protocol=protocol, nodes=2, ops_per_node=2,
                       switch=switch)
        assert result.complete
        assert result.violations == []
        assert result.states > 10_000  # genuinely exhaustive, not a stub
        assert result.quiescent > 0
        assert f"states={result.states:>7d}" in result.summary()

    @pytest.mark.parametrize("protocol", ["msi", "mesi"])
    @pytest.mark.parametrize("switch", [False, True])
    def test_three_node_exhaustive(self, protocol, switch):
        # asymmetric budgets keep three-party interleavings tractable:
        # two ops on node 0 exhaust the two-party races against each
        # single-op peer while nodes 1/2 still exercise fan-out
        # invalidations and third-party depositor/reader roles
        result = check(protocol=protocol, nodes=3, ops_per_node=(2, 1, 1),
                       switch=switch)
        assert result.complete
        assert result.violations == []
        assert result.states > 30_000

    def test_mutations_each_caught(self):
        expected_kind = {
            "skip_inv": "quiescence",   # stale sharer survives a write
            "bad_dir_update": "transition",  # add_sharer on MODIFIED
            "no_snoop": "quiescence",   # switch retains a stale version
            "drop_ack": "stuck",        # home waits forever for an ack
        }
        assert set(expected_kind) == set(MUTATIONS)
        for mutation in MUTATIONS:
            switch = mutation in ("bad_dir_update", "no_snoop")
            result = check(protocol="msi", nodes=2, ops_per_node=2,
                           switch=switch, mutation=mutation)
            assert result.violations, f"{mutation} not caught"
            kinds = {v.kind for v in result.violations}
            assert expected_kind[mutation] in kinds, (mutation, kinds)

    def test_violation_carries_trace(self):
        result = check(protocol="msi", nodes=2, ops_per_node=2,
                       switch=False, mutation="skip_inv")
        traced = [v for v in result.violations if v.trace]
        assert traced, "violations should carry action traces"

    def test_bad_budget_length_rejected(self):
        with pytest.raises(ValueError):
            check(protocol="msi", nodes=3, ops_per_node=(2, 1), switch=False)


# ----------------------------------------------------------------------
# SCSan: clean runs stay clean (and timing-transparent)
# ----------------------------------------------------------------------
def _sc_config(**overrides):
    return tiny_config(switch_cache_size=2048, **overrides)


def _reader_writer_scripts():
    return {
        0: [("r", ("blk", 0)), ("barrier", 0), ("barrier", 1)],
        1: [("barrier", 0), ("w", ("blk", 0)), ("barrier", 1)],
        2: [("barrier", 0), ("barrier", 1)],
        3: [("barrier", 0), ("barrier", 1)],
    }


class TestSanitizerCleanRun:
    def test_clean_run_no_violations(self):
        machine = Machine(_sc_config(), sanitize=True)
        machine.run(ScriptedApp(_reader_writer_scripts(), home=3))
        assert machine.sanitizer.violations == []
        assert machine.sanitizer.deliveries_checked > 0
        assert machine.sanitizer.sync_checks > 0

    def test_sanitizer_is_timing_transparent(self):
        from repro.apps import GaussianElimination

        plain = Machine(_sc_config()).run(GaussianElimination(n=10))
        sane = Machine(_sc_config(), sanitize=True).run(
            GaussianElimination(n=10)
        )
        assert plain.exec_time == sane.exec_time

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Machine(tiny_config()).sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert Machine(tiny_config()).sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Machine(tiny_config()).sanitizer is None


# ----------------------------------------------------------------------
# SCSan: injected live mutations are each detected
# ----------------------------------------------------------------------
class TestSanitizerMutations:
    def test_skipped_invalidation_detected(self, monkeypatch):
        """A node that acks INVs without purging keeps a stale copy."""

        def lazy_on_inv(self, msg):
            self.invs_received += 1
            block = (msg.addr // self.config.block_size) * self.config.block_size
            if not msg.payload.get("no_ack"):
                ack = make_message(
                    MsgKind.INV_ACK, self.node_id, msg.src, block,
                    self.config.block_size,
                )
                self.ni.send(ack)

        monkeypatch.setattr(Node, "_on_inv", lazy_on_inv)
        machine = Machine(tiny_config(), sanitize=True)
        with pytest.raises(SanitizerError, match="stale S copy|holds S"):
            machine.run(ScriptedApp(_reader_writer_scripts(), home=3))

    def test_stale_switch_version_detected(self, monkeypatch):
        """A switch cache that ignores INV snoops retains stale data."""
        monkeypatch.setattr(
            CaesarEngine, "snoop", lambda self, msg, now=-1: None
        )
        machine = Machine(_sc_config(), sanitize=True)
        with pytest.raises(SanitizerError, match="switch"):
            machine.run(ScriptedApp(_reader_writer_scripts(), home=3))
        assert machine.fabric.switch_cache_blocks(), (
            "mutation test vacuous: nothing was deposited in switch caches"
        )

    def test_unfenced_barrier_arrival_detected(self, monkeypatch):
        """Skipping the release fence leaves the write buffer non-empty."""
        monkeypatch.setattr(
            Processor, "_fence_then", lambda self, action: action()
        )
        scripts = {
            0: [("w", ("blk", i)) for i in range(4)] + [("barrier", 0)],
            1: [("barrier", 0)],
            2: [("barrier", 0)],
            3: [("barrier", 0)],
        }
        machine = Machine(tiny_config(), sanitize=True)
        with pytest.raises(SanitizerError, match="non-empty write buffer"):
            machine.run(ScriptedApp(scripts, blocks=4, home=3))

    def test_dropped_worm_detected(self):
        """A worm swallowed by the fabric fails the conservation audit."""
        machine = Machine(tiny_config(l1_size=256, l2_size=1024),
                          sanitize=True)
        dropped = []
        deliver = machine.fabric._deliver

        def lossy_deliver(msg):
            if msg.kind is MsgKind.WRITEBACK and not dropped:
                dropped.append(msg)
                return  # swallow the worm: ledger entry never popped
            deliver(msg)

        machine.fabric._deliver = lossy_deliver
        # enough dirty blocks to overflow the 16-line L2 and force
        # writeback evictions toward the remote home
        scripts = {0: [("w", ("blk", i)) for i in range(24)]}
        with pytest.raises(SanitizerError):
            machine.run(ScriptedApp(scripts, blocks=24, home=3))
        assert dropped, "mutation test vacuous: no WRITEBACK was dropped"

    def test_double_injection_detected(self):
        machine = Machine(tiny_config(), sanitize=True)
        msg = make_message(
            MsgKind.READ, 0, 3, 0x40, machine.config.block_size
        )
        machine.fabric.inject(msg)
        with pytest.raises(SanitizerError, match="injected while already"):
            machine.fabric.inject(msg)

    def test_event_counter_drift_detected(self):
        sim = SanitizedSimulator(Sanitizer())
        sim.at(10, lambda: None)
        event = sim.at(20, lambda: None)
        # bypass cancel(): the bookkeeping never hears about it
        event.cancelled = True
        with pytest.raises(SanitizerError, match="counter drift"):
            sim.audit()

    def test_clock_regression_detected(self):
        sim = SanitizedSimulator(Sanitizer())
        event = sim.at(5, lambda: None)
        sim.now = 10  # corrupt the clock past the queued event
        with pytest.raises(SanitizerError, match="backwards"):
            sim._fire(event)


# ----------------------------------------------------------------------
# ProtocolError context (sanitizer reports need node/addr/state)
# ----------------------------------------------------------------------
class TestProtocolErrorContext:
    def test_context_in_message_and_attributes(self):
        err = ProtocolError("boom", node=3, addr=0x40, state="M")
        assert "[node=3 addr=0x40 state=M]" in str(err)
        assert (err.node, err.addr, err.state) == (3, 0x40, "M")

    def test_directory_errors_carry_context(self):
        from repro.coherence.directory import Directory

        directory = Directory(node_id=0, block_size=64)
        directory.set_owner(0x40, 2, version=1)
        with pytest.raises(ProtocolError) as excinfo:
            directory.add_sharer(0x40, 1)
        assert excinfo.value.addr == 0x40
        assert "addr=0x40" in str(excinfo.value)
        assert excinfo.value.state is not None


# ----------------------------------------------------------------------
# determinism lint
# ----------------------------------------------------------------------
class TestDeterminismLint:
    def test_trunk_is_clean(self):
        assert lint_determinism.lint_tree() == []

    def _lint_snippet(self, tmp_path: Path, rel: str, code: str):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code)
        return lint_determinism.lint_file(path, tmp_path)

    def test_wall_clock_flagged(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "sim/clock.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        assert [f.rule for f in findings].count("W") == 2

    def test_unseeded_random_flagged(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "node/rng.py",
            "import random\n\ndef f(xs):\n    return random.choice(xs)\n",
        )
        assert any(f.rule == "R" for f in findings)

    def test_seeded_random_instance_allowed(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "node/rng.py",
            "import random\n\ndef f(xs, seed):\n"
            "    rng = random.Random(seed)\n    return rng.choice(xs)\n",
        )
        assert not any(f.rule == "R" for f in findings)

    def test_bare_set_iteration_flagged_only_in_sensitive_code(self, tmp_path):
        code = ("def f(sharers):\n"
                "    targets = set(sharers)\n"
                "    return [t for t in targets]\n")
        sensitive = self._lint_snippet(tmp_path, "coherence/fanout.py", code)
        assert any(f.rule == "S" for f in sensitive)
        elsewhere = self._lint_snippet(tmp_path, "cache/util.py", code)
        assert not any(f.rule == "S" for f in elsewhere)

    def test_sorted_set_iteration_allowed(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "coherence/fanout.py",
            "def f(sharers):\n"
            "    targets = set(sharers)\n"
            "    return [t for t in sorted(targets)]\n",
        )
        assert not any(f.rule == "S" for f in findings)

    def test_missing_slots_flagged_with_exemptions(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "sim/engine.py",
            "import enum\n\n"
            "class Hot:\n    def __init__(self):\n        self.x = 1\n\n"
            "class Slotted:\n    __slots__ = ('x',)\n\n"
            "class Kind(enum.Enum):\n    A = 1\n\n"
            "class Boom(Exception):\n    pass\n",
        )
        slots = [f for f in findings if f.rule == "H"]
        assert len(slots) == 1
        assert "Hot" in slots[0].message

    def test_lambda_scheduling_flagged(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "node/pump.py",
            "def f(sim, msg):\n"
            "    sim.schedule(4, lambda: deliver(msg))\n"
            "    sim.call_at(sim.now + 2, lambda: deliver(msg))\n",
        )
        assert [f.rule for f in findings].count("L") == 2

    def test_closure_free_scheduling_allowed(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "node/pump.py",
            "def f(sim, deliver, msg):\n"
            "    sim.call(4, deliver, msg)\n"
            "    sim.call_at(sim.now + 2, deliver, msg)\n"
            "    xs = sorted([3, 1], key=lambda x: -x)\n",
        )
        assert not any(f.rule == "L" for f in findings)

    def test_set_typed_sharers_flagged_in_coherence(self, tmp_path):
        findings = self._lint_snippet(
            tmp_path, "coherence/dir2.py",
            "from typing import Set\n\n"
            "class Entry:\n"
            "    def __init__(self):\n"
            "        self.sharers: Set[int] = set()\n",
        )
        assert any(f.rule == "B" for f in findings)

    def test_private_or_masked_sharers_allowed(self, tmp_path):
        # the obj reference model's private set and the coded bitmask
        # are both fine; so is a Set-typed field outside coherence/
        clean = (
            "from typing import Set\n\n"
            "class Entry:\n"
            "    def __init__(self):\n"
            "        self._sharers: Set[int] = set()\n"
            "        self.sharers_mask: int = 0\n"
        )
        findings = self._lint_snippet(tmp_path, "coherence/dir3.py", clean)
        assert not any(f.rule == "B" for f in findings)
        elsewhere = self._lint_snippet(
            tmp_path, "trace/readers.py",
            "from typing import Set\n\n"
            "class T:\n"
            "    def __init__(self):\n"
            "        self.sharers: Set[int] = set()\n",
        )
        assert not any(f.rule == "B" for f in elsewhere)

    def test_cli_exit_status(self, capsys):
        assert lint_determinism.main([]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
