"""Unit tests for the release-consistency write buffer."""

from repro.cache.writebuffer import WriteBuffer


def test_empty_initially():
    wb = WriteBuffer(capacity=4, block_size=64)
    assert wb.is_empty()
    assert len(wb) == 0


def test_push_and_contains():
    wb = WriteBuffer(capacity=4, block_size=64)
    assert wb.push(0x100)
    assert wb.contains(0x100)
    assert wb.contains(0x100 + 63)  # same block
    assert not wb.contains(0x100 + 64)


def test_merge_same_block():
    wb = WriteBuffer(capacity=2, block_size=64)
    wb.push(0x100)
    wb.push(0x108)
    wb.push(0x110)
    assert len(wb) == 1
    assert wb.stores_retired == 3
    assert wb.stores_merged == 2


def test_capacity_rejection_counts_stall():
    wb = WriteBuffer(capacity=2, block_size=64)
    assert wb.push(0)
    assert wb.push(64)
    assert not wb.push(128)
    assert wb.full_stalls == 1


def test_can_accept_merging_block_when_full():
    wb = WriteBuffer(capacity=2, block_size=64)
    wb.push(0)
    wb.push(64)
    assert wb.can_accept(0)
    assert not wb.can_accept(128)


def test_drain_fifo_order():
    wb = WriteBuffer(capacity=4, block_size=64)
    wb.push(64)
    wb.push(0)
    assert wb.begin_drain() == 64
    wb.finish_drain()
    assert wb.begin_drain() == 0


def test_begin_drain_empty_returns_none():
    wb = WriteBuffer()
    assert wb.begin_drain() is None


def test_only_one_drain_at_a_time():
    wb = WriteBuffer(capacity=4, block_size=64)
    wb.push(0)
    wb.push(64)
    assert wb.begin_drain() == 0
    assert wb.begin_drain() is None
    wb.finish_drain()
    assert wb.begin_drain() == 64


def test_draining_block_still_counted_and_visible():
    wb = WriteBuffer(capacity=4, block_size=64)
    wb.push(0)
    wb.begin_drain()
    assert not wb.is_empty()
    assert wb.contains(0)
    assert wb.draining == 0
    wb.finish_drain()
    assert wb.is_empty()


def test_store_to_draining_block_opens_new_entry():
    wb = WriteBuffer(capacity=4, block_size=64)
    wb.push(0)
    wb.begin_drain()
    assert wb.push(8)  # same block, currently draining
    assert len(wb) == 2  # draining + fresh entry
    wb.finish_drain()
    assert wb.begin_drain() == 0


def test_store_to_draining_block_when_full_stalls():
    wb = WriteBuffer(capacity=1, block_size=64)
    wb.push(0)
    wb.begin_drain()
    wb.push(64)  # fills the single slot
    assert not wb.push(8)  # same block as draining but no room
    assert wb.full_stalls == 1


def test_pending_blocks_iteration():
    wb = WriteBuffer(capacity=4, block_size=64)
    wb.push(0)
    wb.push(64)
    wb.begin_drain()
    assert list(wb.pending_blocks()) == [0, 64]


def test_block_granularity_alignment():
    wb = WriteBuffer(capacity=4, block_size=64)
    wb.push(0x1F)
    assert wb.begin_drain() == 0
